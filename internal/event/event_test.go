package event

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Len() != 0 {
		t.Fatalf("Len of zero queue = %d, want 0", q.Len())
	}
	if _, ok := q.NextAt(); ok {
		t.Fatal("NextAt on empty queue reported ok")
	}
	q.RunUntil(100) // must not panic
}

func TestFiresInCycleOrder(t *testing.T) {
	var q Queue
	var got []uint64
	for _, at := range []uint64{5, 1, 9, 3, 7} {
		at := at
		q.Schedule(at, func(now uint64) { got = append(got, now) })
	}
	q.RunUntil(10)
	want := []uint64{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestFIFOWithinSameCycle(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(42, func(uint64) { got = append(got, i) })
	}
	q.RunUntil(42)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle order = %v, want FIFO", got)
		}
	}
}

func TestRunUntilBoundary(t *testing.T) {
	var q Queue
	fired := map[uint64]bool{}
	for _, at := range []uint64{10, 11, 12} {
		at := at
		q.Schedule(at, func(uint64) { fired[at] = true })
	}
	q.RunUntil(11)
	if !fired[10] || !fired[11] {
		t.Fatal("events at or before the boundary must fire")
	}
	if fired[12] {
		t.Fatal("event after the boundary must not fire")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1 pending event", q.Len())
	}
}

func TestCallbackSchedulesWithinWindow(t *testing.T) {
	var q Queue
	var got []uint64
	q.Schedule(1, func(now uint64) {
		got = append(got, now)
		q.Schedule(2, func(now uint64) { got = append(got, now) })
	})
	q.RunUntil(5)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("chained events fired %v, want [1 2]", got)
	}
}

func TestNextAt(t *testing.T) {
	var q Queue
	q.Schedule(7, func(uint64) {})
	q.Schedule(3, func(uint64) {})
	at, ok := q.NextAt()
	if !ok || at != 3 {
		t.Fatalf("NextAt = %d,%v, want 3,true", at, ok)
	}
}

func TestFiredAndMaxLen(t *testing.T) {
	var q Queue
	for i := uint64(1); i <= 5; i++ {
		q.Schedule(i, func(uint64) {})
	}
	if q.MaxLen() != 5 {
		t.Fatalf("MaxLen = %d, want 5", q.MaxLen())
	}
	q.RunUntil(3)
	if q.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", q.Fired())
	}
	q.RunUntil(10)
	if q.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", q.Fired())
	}
	if q.MaxLen() != 5 {
		t.Fatalf("MaxLen after drain = %d, want 5 (high-water)", q.MaxLen())
	}
}

// Regression: scheduling at a cycle the queue has already fired past is the
// documented hazard; it must be counted, and the event must still fire.
func TestPastScheduleCounted(t *testing.T) {
	var q Queue
	q.Schedule(10, func(uint64) {})
	q.RunUntil(10)
	if q.PastSchedules() != 0 {
		t.Fatalf("PastSchedules = %d before any past schedule", q.PastSchedules())
	}
	fired := false
	q.Schedule(5, func(now uint64) { fired = true })
	if q.PastSchedules() != 1 {
		t.Fatalf("PastSchedules = %d, want 1", q.PastSchedules())
	}
	q.RunUntil(20)
	if !fired {
		t.Fatal("past-scheduled event must still fire")
	}
	// Scheduling at exactly the highest fired cycle is not "in the past".
	q.Schedule(10, func(uint64) {})
	if q.PastSchedules() != 1 {
		t.Fatalf("PastSchedules = %d after same-cycle schedule, want 1", q.PastSchedules())
	}
}

// Property: for any set of schedule times, events fire in nondecreasing time
// order and all of them fire.
func TestPropertyOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		var got []uint64
		for _, at := range times {
			q.Schedule(uint64(at), func(now uint64) { got = append(got, now) })
		}
		q.RunUntil(1 << 17)
		if len(got) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		want := make([]uint64, len(times))
		for i, at := range times {
			want[i] = uint64(at)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var q Queue
	nop := func(uint64) {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(uint64(rng.Intn(1000)), nop)
		if q.Len() > 1024 {
			q.RunUntil(1 << 30)
		}
	}
	q.RunUntil(1 << 30)
}

// recordingHandler is a reusable Handler for the tests below.
type recordingHandler struct {
	fired []uint64
}

func (h *recordingHandler) OnEvent(now uint64) { h.fired = append(h.fired, now) }

// TestScheduleHandlerInterleavesWithSchedule checks that handler events and
// closure events share one FIFO sequence: same-cycle events fire in
// registration order regardless of which entry point registered them.
func TestScheduleHandlerInterleavesWithSchedule(t *testing.T) {
	var q Queue
	var got []string
	h := &recordingHandler{}
	q.Schedule(5, func(uint64) { got = append(got, "fn1") })
	q.ScheduleHandler(5, h)
	q.Schedule(5, func(uint64) { got = append(got, "fn2") })
	q.RunUntil(5)
	if len(h.fired) != 1 || h.fired[0] != 5 {
		t.Fatalf("handler fired = %v, want [5]", h.fired)
	}
	if len(got) != 2 || got[0] != "fn1" || got[1] != "fn2" {
		t.Fatalf("closures fired = %v, want [fn1 fn2]", got)
	}
	if q.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", q.Fired())
	}
}

// TestScheduleHandlerDoesNotAllocate is the hot-path contract: once the heap
// has grown, scheduling and firing a reusable handler costs zero allocations
// per event. (Closure-based Schedule cannot make this guarantee — that is
// why ScheduleHandler exists.)
func TestScheduleHandlerDoesNotAllocate(t *testing.T) {
	var q Queue
	h := &recordingHandler{fired: make([]uint64, 0, 1024)}
	now := uint64(0)
	q.ScheduleHandler(1, h) // grow the heap once
	q.RunUntil(1)
	now = 1
	avg := testing.AllocsPerRun(200, func() {
		now++
		q.ScheduleHandler(now, h)
		q.RunUntil(now)
	})
	if avg != 0 {
		t.Fatalf("ScheduleHandler+RunUntil allocates %v/op, want 0", avg)
	}
}

// TestFarFutureOrdering exercises the heap tier: events far beyond the ring
// window must interleave correctly with near-future bucket events.
func TestFarFutureOrdering(t *testing.T) {
	var q Queue
	var got []uint64
	rec := func(now uint64) { got = append(got, now) }
	q.Schedule(5000, rec) // far tier
	q.Schedule(3, rec)    // ring tier
	q.Schedule(70000, rec)
	q.Schedule(900, rec)
	q.RunUntil(100000)
	want := []uint64{3, 900, 5000, 70000}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// TestSameCycleAcrossTiers: an event scheduled for cycle c while c was far
// future and another scheduled for c once c is within the ring must fire in
// registration (seq) order.
func TestSameCycleAcrossTiers(t *testing.T) {
	var q Queue
	var got []int
	c := uint64(2000)                                    // outside the zero-based ring window at first
	q.Schedule(c, func(uint64) { got = append(got, 1) }) // far tier
	q.RunUntil(1500)                                     // advance the window over c
	q.Schedule(c, func(uint64) { got = append(got, 2) }) // ring tier
	q.RunUntil(c)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("cross-tier same-cycle order = %v, want [1 2]", got)
	}
}

// TestPastScheduleInterleavesFirst: a past-scheduled event must fire before
// pending current-cycle events with earlier registration, matching the
// global (cycle, seq) order of a plain min-heap.
func TestPastScheduleInterleavesFirst(t *testing.T) {
	var q Queue
	var got []string
	q.Schedule(10, func(uint64) {
		got = append(got, "a")
		q.Schedule(2, func(uint64) { got = append(got, "late") }) // in the past
	})
	q.Schedule(10, func(uint64) { got = append(got, "b") })
	q.RunUntil(10)
	if len(got) != 3 || got[0] != "a" || got[1] != "late" || got[2] != "b" {
		t.Fatalf("fired %v, want [a late b]", got)
	}
	if q.PastSchedules() != 1 {
		t.Fatalf("PastSchedules = %d, want 1", q.PastSchedules())
	}
}

// TestRingWrapAround pushes the drain cursor far past one ring lap to check
// bucket-slot reuse keeps cycles distinct.
func TestRingWrapAround(t *testing.T) {
	var q Queue
	var got []uint64
	now := uint64(0)
	for lap := 0; lap < 5; lap++ {
		for _, off := range []uint64{1, 500, 1023} {
			at := now + off
			q.Schedule(at, func(at uint64) { got = append(got, at) })
		}
		now += 1023
		q.RunUntil(now)
	}
	if len(got) != 15 {
		t.Fatalf("fired %d events, want 15", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

// TestReset returns a used queue to its initial state but keeps it usable.
func TestReset(t *testing.T) {
	var q Queue
	q.Schedule(5, func(uint64) {})
	q.Schedule(9000, func(uint64) {}) // one event in each tier
	q.RunUntil(5)
	q.Schedule(2, func(uint64) {}) // a past-schedule hazard
	q.Reset()
	if q.Len() != 0 || q.Fired() != 0 || q.PastSchedules() != 0 || q.MaxLen() != 0 {
		t.Fatalf("Reset left state: len=%d fired=%d past=%d maxLen=%d",
			q.Len(), q.Fired(), q.PastSchedules(), q.MaxLen())
	}
	if _, ok := q.NextAt(); ok {
		t.Fatal("NextAt reported an event after Reset")
	}
	fired := false
	q.Schedule(1, func(uint64) { fired = true })
	q.RunUntil(1)
	if !fired || q.Fired() != 1 {
		t.Fatal("queue unusable after Reset")
	}
}

// TestResetDoesNotAllocate: a Reset queue retains its storage, so the next
// run's scheduling stays allocation-free.
func TestResetDoesNotAllocate(t *testing.T) {
	var q Queue
	h := &recordingHandler{fired: make([]uint64, 0, 16)}
	q.ScheduleHandler(1, h)
	q.RunUntil(1)
	avg := testing.AllocsPerRun(100, func() {
		q.Reset()
		h.fired = h.fired[:0]
		q.ScheduleHandler(3, h)
		q.RunUntil(3)
	})
	if avg != 0 {
		t.Fatalf("Reset+Schedule+RunUntil allocates %v/op, want 0", avg)
	}
}
