// Command promlint strictly validates a Prometheus text exposition — the
// CI-side guard for the daemon's /metrics endpoint. It checks what substring
// assertions cannot: every sample belongs to a declared TYPE family,
// histogram bucket series are cumulative with a trailing +Inf equal to
// _count, and metric names stay inside the exposition alphabet.
//
// Usage:
//
//	promlint http://127.0.0.1:8321/metrics   # fetch and validate
//	curl -s .../metrics | promlint -         # validate stdin
//
// Exits 0 and prints the family count on success; exits 1 with the first
// violation otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"smtdram/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: promlint <url | ->\nValidates a Prometheus text exposition from a URL or stdin.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	src := flag.Arg(0)

	var r io.Reader
	switch {
	case src == "-":
		r = os.Stdin
	case strings.HasPrefix(src, "http://"), strings.HasPrefix(src, "https://"):
		c := &http.Client{Timeout: 30 * time.Second}
		resp, err := c.Get(src)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("GET %s: %s", src, resp.Status))
		}
		r = resp.Body
	default:
		f, err := os.Open(src)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	n, err := obs.ValidateExposition(r)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("promlint: ok (%d metric families)\n", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promlint:", err)
	os.Exit(1)
}
