// Command tracedump runs one simulation and writes every serviced DRAM
// request as a CSV row — the raw material for offline analysis of access
// scheduling (inter-arrival clustering, per-thread queueing, row-buffer
// locality over time). With -lifecycle it instead records the full
// request-lifecycle trace (enqueue → schedule → precharge/activate/CAS →
// data return) and pretty-prints, filters, or re-exports it.
//
// Usage:
//
//	tracedump -mix 2-MEM -n 50000 > trace.csv
//	tracedump -apps swim -policy fcfs | head
//	tracedump -mix 4-MEM -summary              # aggregate analysis, no CSV
//	tracedump -lifecycle -thread 0 -from 5000 -to 9000
//	tracedump -lifecycle -format chrome > trace.json   # open in Perfetto
//	tracedump -lifecycle -format jsonl -channel 1 -bank 3
//
// Columns (CSV mode):
// arrive,issue,done,thread,read,channel,chip,bank,row,outcome,queued.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"smtdram/internal/analysis"
	"smtdram/internal/core"
	"smtdram/internal/faults"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
	"smtdram/internal/workload"
)

func main() {
	var (
		mix     = flag.String("mix", "", "Table 2 mix name; overrides -apps")
		apps    = flag.String("apps", "mcf,ammp", "comma-separated application list")
		policy  = flag.String("policy", "hit-first", "scheduling policy")
		warmup  = flag.Uint64("warmup", 100_000, "per-thread warmup instructions")
		target  = flag.Uint64("n", 100_000, "per-thread measured instructions")
		seed    = flag.Int64("seed", 42, "workload seed")
		summary = flag.Bool("summary", false, "print an aggregate analysis instead of the CSV")
		faultSp = flag.String("faults", "", "fault-injection plan (same spec as smtdram -faults); fault/retry/failover milestones then appear in the lifecycle trace")

		lifecycle = flag.Bool("lifecycle", false, "record the request-lifecycle trace instead of the CSV")
		format    = flag.String("format", "pretty", "lifecycle output: pretty, jsonl, or chrome")
		thread    = flag.String("thread", "", "lifecycle filter: hardware thread (-1 = writebacks; empty = any)")
		channel   = flag.String("channel", "", "lifecycle filter: DRAM channel (empty = any)")
		bank      = flag.String("bank", "", "lifecycle filter: bank within a chip (empty = any)")
		from      = flag.Uint64("from", 0, "lifecycle filter: first cycle of interest")
		to        = flag.Uint64("to", 0, "lifecycle filter: last cycle of interest (0 = unbounded)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "tracedump: unexpected argument %q (all options are flags)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}

	names := strings.Split(*apps, ",")
	if *mix != "" {
		m, err := workload.MixByName(*mix)
		fatalIf(err)
		names = m.Apps
	}
	cfg := core.DefaultConfig(names...)
	cfg.WarmupInstr, cfg.TargetInstr, cfg.Seed = *warmup, *target, *seed
	var err error
	cfg.Mem.Policy, err = memctrl.ParsePolicy(*policy)
	fatalIf(err)
	cfg.Faults, err = faults.Parse(*faultSp)
	fatalIf(err)

	if *lifecycle {
		switch strings.ToLower(*format) {
		case "pretty", "jsonl", "chrome":
		default:
			fmt.Fprintf(os.Stderr, "tracedump: unknown lifecycle format %q (want pretty, jsonl, or chrome)\n", *format)
			flag.Usage()
			os.Exit(2)
		}
		f := obs.Filter{From: *from, To: *to}
		f.Thread = parseIntFilter("thread", *thread)
		f.Channel = parseIntFilter("channel", *channel)
		f.Bank = parseIntFilter("bank", *bank)
		runLifecycle(cfg, *format, f)
		return
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var events uint64
	var coll analysis.Collector
	if *summary {
		cfg.Mem.Trace = func(e memctrl.TraceEvent) {
			events++
			coll.Add(e)
		}
	} else {
		fmt.Fprintln(w, "arrive,issue,done,thread,read,channel,chip,bank,row,outcome,queued")
		cfg.Mem.Trace = func(e memctrl.TraceEvent) {
			events++
			fmt.Fprintf(w, "%d,%d,%d,%d,%t,%d,%d,%d,%d,%s,%d\n",
				e.Arrive, e.Issue, e.Done, e.Thread, e.Read,
				e.Channel, e.Chip, e.Bank, e.Row, e.Outcome, e.QueuedBehind)
		}
	}

	res, err := core.Run(cfg)
	fatalIf(err)
	if *summary {
		sum, err := coll.Summarize()
		fatalIf(err)
		fmt.Fprint(w, sum)
	}
	fmt.Fprintf(os.Stderr, "tracedump: %d events over %d cycles (%.2f reads/100 instr)\n",
		events, res.Cycles, res.MemReadsPer100Inst)
}

// runLifecycle runs the simulation with the lifecycle tracer attached and
// renders the (filtered) trace in the requested format.
func runLifecycle(cfg core.Config, format string, f obs.Filter) {
	ob := obs.New(obs.Options{Trace: true})
	cfg.Observe = func() *obs.Observer { return ob }
	s, err := core.NewSimulator(cfg)
	fatalIf(err)
	res, err := s.Run()
	fatalIf(err)

	events := obs.FilterEvents(ob.Trace.Events(), f)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch strings.ToLower(format) {
	case "jsonl":
		fatalIf(obs.WriteJSONL(w, events))
	case "chrome":
		fatalIf(obs.WriteChrome(w, events))
	default: // main validated the format; anything else renders pretty
		printPretty(w, events)
	}
	// The trace itself is byte-identical at either clock speed; the skip
	// summary goes to stderr with the other diagnostics so stdout stays pure.
	st := s.SkipStats()
	fmt.Fprintf(os.Stderr, "tracedump: %d lifecycle events (of %d recorded) over %d cycles; clock skipped %d of %d wall cycles (%.1f%%) in %d windows, longest %d\n",
		len(events), ob.Trace.Len(), res.Cycles, st.Skipped, st.Wall, 100*st.Rate(), st.Segments, st.Longest)
}

// printPretty renders the trace grouped by request, one milestone per line.
func printPretty(w *bufio.Writer, events []obs.Event) {
	for _, group := range obs.GroupByRequest(events) {
		e0 := group[0]
		kind := "read"
		if !e0.Read {
			kind = "write"
		}
		origin := fmt.Sprintf("thread %d", e0.Thread)
		if e0.Thread < 0 {
			origin = "writeback"
		}
		fmt.Fprintf(w, "req %d  %s 0x%x  %s  ch%d chip%d bank%d row %d\n",
			e0.ReqID, kind, e0.Addr, origin, e0.Channel, e0.Chip, e0.Bank, e0.Row)
		for _, e := range group {
			switch {
			case e.End > e.At:
				fmt.Fprintf(w, "  %10d..%-10d %-10s (%d cycles)", e.At, e.End, e.Kind, e.End-e.At)
			default:
				fmt.Fprintf(w, "  %10d              %-10s", e.At, e.Kind)
			}
			if e.Outcome != "" {
				fmt.Fprintf(w, "  %s", e.Outcome)
			}
			if e.Kind == obs.KEnqueue && e.Queue > 0 {
				fmt.Fprintf(w, "  queue=%d", e.Queue)
			}
			fmt.Fprintln(w)
		}
	}
}

// parseIntFilter converts a flag value into an optional int filter; empty
// means "match any".
func parseIntFilter(name, s string) *int {
	if s == "" {
		return nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracedump: -%s: %q is not an integer\n", name, s)
		flag.Usage()
		os.Exit(2)
	}
	return &v
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}
