// Command tracedump runs one simulation and writes every serviced DRAM
// request as a CSV row — the raw material for offline analysis of access
// scheduling (inter-arrival clustering, per-thread queueing, row-buffer
// locality over time).
//
// Usage:
//
//	tracedump -mix 2-MEM -n 50000 > trace.csv
//	tracedump -apps swim -policy fcfs | head
//	tracedump -mix 4-MEM -summary        # aggregate analysis, no CSV
//
// Columns: arrive,issue,done,thread,read,channel,chip,bank,row,outcome,queued.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"smtdram/internal/analysis"
	"smtdram/internal/core"
	"smtdram/internal/memctrl"
	"smtdram/internal/workload"
)

func main() {
	var (
		mix     = flag.String("mix", "", "Table 2 mix name; overrides -apps")
		apps    = flag.String("apps", "mcf,ammp", "comma-separated application list")
		policy  = flag.String("policy", "hit-first", "scheduling policy")
		warmup  = flag.Uint64("warmup", 100_000, "per-thread warmup instructions")
		target  = flag.Uint64("n", 100_000, "per-thread measured instructions")
		seed    = flag.Int64("seed", 42, "workload seed")
		summary = flag.Bool("summary", false, "print an aggregate analysis instead of the CSV")
	)
	flag.Parse()

	names := strings.Split(*apps, ",")
	if *mix != "" {
		m, err := workload.MixByName(*mix)
		fatalIf(err)
		names = m.Apps
	}
	cfg := core.DefaultConfig(names...)
	cfg.WarmupInstr, cfg.TargetInstr, cfg.Seed = *warmup, *target, *seed
	var err error
	cfg.Mem.Policy, err = memctrl.ParsePolicy(*policy)
	fatalIf(err)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var events uint64
	var coll analysis.Collector
	if *summary {
		cfg.Mem.Trace = func(e memctrl.TraceEvent) {
			events++
			coll.Add(e)
		}
	} else {
		fmt.Fprintln(w, "arrive,issue,done,thread,read,channel,chip,bank,row,outcome,queued")
		cfg.Mem.Trace = func(e memctrl.TraceEvent) {
			events++
			fmt.Fprintf(w, "%d,%d,%d,%d,%t,%d,%d,%d,%d,%s,%d\n",
				e.Arrive, e.Issue, e.Done, e.Thread, e.Read,
				e.Channel, e.Chip, e.Bank, e.Row, e.Outcome, e.QueuedBehind)
		}
	}

	res, err := core.Run(cfg)
	fatalIf(err)
	if *summary {
		sum, err := coll.Summarize()
		fatalIf(err)
		fmt.Fprint(w, sum)
	}
	fmt.Fprintf(os.Stderr, "tracedump: %d events over %d cycles (%.2f reads/100 instr)\n",
		events, res.Cycles, res.MemReadsPer100Inst)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}
