// Command smtdram runs one SMT + DRAM simulation described by flags and
// prints the measurements: per-thread IPC, memory traffic, row-buffer
// behaviour, and the concurrency distributions.
//
// Examples:
//
//	smtdram -mix 4-MEM
//	smtdram -apps mcf,ammp -channels 8 -gang 2 -policy request-based
//	smtdram -apps swim -dram rdram -scheme page -pagemode close
//	smtdram -mix 4-MEM -breakdown      # + per-app CPI attribution, parallel
//	smtdram -dump-config
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"smtdram/internal/addrmap"
	"smtdram/internal/core"
	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/faults"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
	"smtdram/internal/runner"
	"smtdram/internal/stats"
	"smtdram/internal/workload"
)

func main() {
	var (
		mix      = flag.String("mix", "", "Table 2 mix name (e.g. 4-MEM); overrides -apps")
		apps     = flag.String("apps", "mcf,ammp", "comma-separated application list, one per thread")
		channels = flag.Int("channels", 2, "physical memory channels (2/4/8)")
		gang     = flag.Int("gang", 1, "physical channels per logical channel")
		dramKind = flag.String("dram", "ddr", "DRAM technology: ddr or rdram")
		scheme   = flag.String("scheme", "xor", "address mapping: page or xor")
		pagemode = flag.String("pagemode", "open", "page mode: open or close")
		policy   = flag.String("policy", "hit-first", "scheduling: fcfs, hit-first, age-based, request-based, rob-based, iq-based")
		fetch    = flag.String("fetch", "dwarn", "fetch policy: rr, icount, fetch-stall, dg, dwarn")
		warmup   = flag.Uint64("warmup", 100_000, "per-thread warmup instructions")
		target   = flag.Uint64("target", 200_000, "per-thread measured instructions")
		seed     = flag.Int64("seed", 42, "workload seed")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent simulations (used by -breakdown; 1 = sequential)")
		brkdown  = flag.Bool("breakdown", false, "also attribute each app's CPI (proc/L2/L3/mem) on this machine via the paper's four-run method")
		jsonOut  = flag.Bool("json", false, "print the result as JSON instead of the text report (byte-identical to the daemon's /result payload)")
		dump     = flag.Bool("dump-config", false, "print the Table 1 configuration and exit")

		faultSpec = flag.String("faults", "", "fault-injection plan, e.g. 'bitflip:rate=1e-6,seed=7;channel-fail:ch=1,at=2000000;drop:rate=1e-7' (clauses: bitflip, drop, stuckrow, channel-fail, seed)")

		traceOut   = flag.String("trace", "", "write a request-lifecycle trace to this file (.jsonl = JSON lines, anything else = Chrome trace_event JSON for Perfetto)")
		metricsOut = flag.String("metrics", "", "write cycle-sampled metrics and final counters to this file (JSON lines)")
		metricsInt = flag.Uint64("metrics-interval", 1000, "metrics sampling period in cycles")
		profile    = flag.Bool("profile", false, "print event-loop profiling (events/cycle, wall time per simulated megacycle) to stderr")

		noskip     = flag.Bool("noskip", false, "force the clock to tick every cycle (results are byte-identical either way; this exists to demonstrate that)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		usageErr(fmt.Sprintf("unexpected argument %q (all options are flags)", flag.Arg(0)))
	}
	if *metricsOut != "" && *metricsInt == 0 {
		usageErr("-metrics-interval must be at least 1 cycle")
	}
	if *jobs < 1 {
		usageErr("-jobs must be at least 1")
	}
	if *target == 0 {
		usageErr("-target must be at least 1 instruction")
	}
	if *jsonOut && *brkdown {
		usageErr("-json and -breakdown are mutually exclusive")
	}

	if *dump {
		dumpConfig()
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatalIf(err)
		fatalIf(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	names := strings.Split(*apps, ",")
	if *mix != "" {
		m, err := workload.MixByName(*mix)
		fatalIf(err)
		names = m.Apps
	}
	cfg := core.DefaultConfig(names...)
	cfg.WarmupInstr, cfg.TargetInstr, cfg.Seed = *warmup, *target, *seed
	cfg.DisableClockSkip = *noskip
	cfg.Mem.PhysChannels = *channels
	cfg.Mem.Gang = *gang

	// A malformed -faults spec is a usage error (exit 2), like any other bad
	// flag value — not a simulation failure.
	plan, err := faults.Parse(*faultSpec)
	if err != nil {
		usageErr(err.Error())
	}
	cfg.Faults = plan
	cfg.Mem.Kind, err = core.ParseDRAMKind(*dramKind)
	fatalIf(err)
	cfg.Mem.Policy, err = memctrl.ParsePolicy(*policy)
	fatalIf(err)
	cfg.CPU.Policy, err = cpu.ParseFetchPolicy(*fetch)
	fatalIf(err)
	switch strings.ToLower(*scheme) {
	case "page":
		cfg.Mem.Scheme = addrmap.Page
	case "xor":
		cfg.Mem.Scheme = addrmap.XOR
	default:
		fatalIf(fmt.Errorf("unknown mapping scheme %q", *scheme))
	}
	switch strings.ToLower(*pagemode) {
	case "open":
		cfg.Mem.PageMode = dram.OpenPage
	case "close":
		cfg.Mem.PageMode = dram.ClosePage
	default:
		fatalIf(fmt.Errorf("unknown page mode %q", *pagemode))
	}

	// Every field of cfg came from the command line, so a config that fails
	// validation (e.g. a fault plan naming a channel the machine lacks) is a
	// usage error too — caught here, before any simulation work starts.
	if err := cfg.Validate(); err != nil {
		usageErr(err.Error())
	}

	observer := obs.New(obs.Options{
		Metrics:         *metricsOut != "",
		MetricsInterval: *metricsInt,
		Trace:           *traceOut != "",
		Profile:         *profile,
		Label:           strings.Join(names, "+"),
	})
	if observer != nil {
		cfg.Observe = func() *obs.Observer { return observer }
	}

	// The main run and the optional breakdown runs are independent, so they
	// all fan out on the pool; results are collected in submission order.
	pool := runner.New(*jobs)
	// The main run builds the simulator by hand (rather than core.Run) so the
	// two-speed clock's skip statistics survive into the report; the future's
	// Wait orders the write before the read.
	var skipStats obs.SkipStats
	runFut := runner.SubmitNamed(pool, cfg.Fingerprint(), func() (core.Result, error) {
		s, err := core.NewSimulator(cfg)
		if err != nil {
			return core.Result{}, err
		}
		res, err := s.Run()
		skipStats = s.SkipStats()
		return res, err
	})
	var bdJobs [][4]*runner.Future[float64]
	if *brkdown {
		bdJobs = make([][4]*runner.Future[float64], len(names))
		for i, app := range names {
			for k, c := range core.CPIBreakdownConfigs(cfg, app) {
				c.Observe = nil // the observer belongs to the main run only
				bdJobs[i][k] = runner.SubmitNamed(pool, c.Fingerprint(), func() (float64, error) {
					r, err := core.Run(c)
					if err != nil {
						return 0, err
					}
					return 1 / r.IPC[0], nil
				})
			}
		}
	}
	res, err := runFut.Wait()
	fatalIf(err)
	if *jsonOut {
		// The exact bytes the daemon serves from /v1/jobs/{id}/result: the
		// same core.Result through the same json.Marshal.
		b, err := json.Marshal(res)
		fatalIf(err)
		_, err = os.Stdout.Write(b)
		fatalIf(err)
	} else {
		report(cfg, res, skipStats)
	}
	if *brkdown {
		fmt.Printf("CPI attribution (four-run method, each app alone on this machine):\n")
		fmt.Printf("%-3s %-9s %10s %10s %10s %10s %10s\n", "t", "app", "CPIproc", "CPIL2", "CPIL3", "CPImem", "total")
		for i, app := range names {
			var cpi [4]float64
			for k := range bdJobs[i] {
				cpi[k], err = bdJobs[i][k].Wait()
				fatalIf(err)
			}
			b := stats.NewBreakdown(cpi[0], cpi[1], cpi[2], cpi[3])
			fmt.Printf("%-3d %-9s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				i, app, b.Proc, b.L2, b.L3, b.Mem, b.Total())
		}
	}
	fatalIf(writeObservability(observer, *traceOut, *metricsOut))

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		fatalIf(err)
		runtime.GC()
		fatalIf(pprof.WriteHeapProfile(f))
		fatalIf(f.Close())
	}
}

// writeObservability flushes the run's trace, metrics, and profile output.
func writeObservability(ob *obs.Observer, tracePath, metricsPath string) error {
	if ob == nil {
		return nil
	}
	if tracePath != "" && ob.Trace != nil {
		if err := writeTrace(ob.Trace, tracePath); err != nil {
			return err
		}
		fmt.Printf("trace: %d lifecycle events -> %s\n", ob.Trace.Len(), tracePath)
	}
	if metricsPath != "" && ob.Reg != nil {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := ob.Reg.WriteJSONL(f, ob.Label, ob.FinalCycle); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics: %d metrics -> %s\n", len(ob.Reg.Names()), metricsPath)
	}
	if ob.Prof != nil {
		fmt.Fprint(os.Stderr, ob.Prof.Summary())
	}
	return nil
}

func writeTrace(t *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteChrome(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// usageErr prints a usage message and exits non-zero (distinct from
// simulation failures, which exit 1).
func usageErr(msg string) {
	fmt.Fprintln(os.Stderr, "smtdram:", msg)
	flag.Usage()
	os.Exit(2)
}

func report(cfg core.Config, res core.Result, st obs.SkipStats) {
	fmt.Printf("machine: %d threads, %dC-%dG %s, %v mapping, %v page, %v scheduling, %v fetch\n",
		len(cfg.Apps), cfg.Mem.PhysChannels, cfg.Mem.Gang, cfg.Mem.Kind,
		cfg.Mem.Scheme, cfg.Mem.PageMode, cfg.Mem.Policy, cfg.CPU.Policy)
	fmt.Printf("cycles: %d%s\n", res.Cycles, timedOut(res))
	if st.Skipped > 0 {
		fmt.Printf("clock: skipped %d of %d wall cycles (%.1f%%) in %d windows, longest %d\n",
			st.Skipped, st.Wall, 100*st.Rate(), st.Segments, st.Longest)
	}
	fmt.Printf("%-3s %-9s %10s %12s %10s %12s\n", "t", "app", "IPC", "committed", "squashes", "avg DRAM lat")
	for i, app := range res.Apps {
		lat := "-"
		if i < len(res.ThreadAvgReadLatency) && res.ThreadAvgReadLatency[i] > 0 {
			lat = fmt.Sprintf("%.0f", res.ThreadAvgReadLatency[i])
		}
		fmt.Printf("%-3d %-9s %10.3f %12d %10d %12s\n", i, app, res.IPC[i], res.Committed[i], res.Squashes[i], lat)
	}
	fmt.Printf("total IPC: %.3f\n", res.TotalIPC())
	fmt.Printf("memory: %d reads, %d writes, %.2f reads/100 instr, avg read latency %.0f cycles\n",
		res.MemReads, res.MemWrites, res.MemReadsPer100Inst, res.AvgReadLatency)
	fmt.Printf("row buffer: %.1f%% miss (%d hits, %d closed, %d conflicts)\n",
		100*res.RowBufferMissRate, res.RowHits, res.RowClosed, res.RowConflicts)
	if f := res.Faults; f != nil {
		fmt.Printf("faults: %d injected (%d bit flips, %d multi-bit, %d drops)\n",
			f.Injected, f.BitFlips, f.MultiBit, f.Drops)
		fmt.Printf("ecc: %d detected, %d corrected, %d uncorrected; retries: %d (%d gave up)\n",
			f.Detected, f.Corrected, f.Uncorrected, f.Retries, f.RetryGiveUps)
		if rep := res.Failover; rep != nil {
			fmt.Printf("failover: channel %d failed at cycle %d, %d queued requests migrated\n",
				rep.FailedChannel, rep.AtCycle, f.FailedOver)
			fmt.Printf("  IPC %.3f -> %.3f, avg read latency %.0f -> %.0f cycles\n",
				rep.PreIPC, rep.PostIPC, rep.PreAvgReadLat, rep.PostAvgReadLat)
		}
	}
	fmt.Printf("caches:\n")
	for _, c := range res.Caches {
		fmt.Printf("  %-4s %10d accesses, %9d misses (%.1f%%), %8d writebacks\n",
			c.Name, c.Accesses, c.Misses, 100*c.MissRate, c.Writebacks)
	}
	fmt.Printf("outstanding while busy:")
	for _, b := range stats.Bucketize(res.OutstandingHist, []int{1, 4, 8, 16}) {
		fmt.Printf("  %s: %.1f%%", b.Label, 100*b.Frac)
	}
	fmt.Println()
}

func timedOut(res core.Result) string {
	if res.TimedOut {
		return " (TIMED OUT before all threads hit the target)"
	}
	return ""
}

func dumpConfig() {
	cfg := core.DefaultConfig("mcf")
	c := cfg.CPU
	fmt.Println("Table 1 simulator parameters (as configured):")
	fmt.Printf("  processor speed        3 GHz (all latencies in CPU cycles)\n")
	fmt.Printf("  fetch width            %d instructions, up to %d threads/cycle\n", c.FetchWidth, c.FetchMaxThreads)
	fmt.Printf("  baseline fetch policy  %v\n", c.Policy)
	fmt.Printf("  front-end depth        %d cycles\n", c.FrontendDelay)
	fmt.Printf("  functional units       %d IntALU, %d IntMult, %d FPALU, %d FPMult\n", c.IntALU, c.IntMult, c.FPALU, c.FPMult)
	fmt.Printf("  issue width            %d Int, %d FP\n", c.IntIssueWidth, c.FPIssueWidth)
	fmt.Printf("  issue queue size       %d Int, %d FP\n", c.IntIQ, c.FPIQ)
	fmt.Printf("  reorder buffer         %d/thread\n", c.ROBPerThread)
	fmt.Printf("  load/store queues      %d LQ, %d SQ\n", c.LQ, c.SQ)
	fmt.Printf("  mispredict penalty     %d cycles\n", c.MispredictPenalty)
	fmt.Printf("  L1 caches              %dKB I / %dKB D, %d-way, %dB lines, %d-cycle\n",
		cfg.L1I.SizeBytes>>10, cfg.L1D.SizeBytes>>10, cfg.L1D.Assoc, cfg.L1D.LineBytes, cfg.L1D.Latency)
	fmt.Printf("  L2 cache               %dKB, %d-way, %d-cycle\n", cfg.L2.SizeBytes>>10, cfg.L2.Assoc, cfg.L2.Latency)
	fmt.Printf("  L3 cache               %dMB, %d-way, %d-cycle\n", cfg.L3.SizeBytes>>20, cfg.L3.Assoc, cfg.L3.Latency)
	fmt.Printf("  MSHRs                  %d/cache\n", cfg.L1D.MSHRs)
	fmt.Printf("  memory channels        %d (gang %d), %v\n", cfg.Mem.PhysChannels, cfg.Mem.Gang, cfg.Mem.Kind)
	params, _ := cfg.Mem.Params()
	fmt.Printf("  DRAM timing            tRCD=%d CL=%d tRP=%d burst=%d cycles (15ns/15ns/15ns at 3GHz)\n",
		params.TRCD, params.CL, params.TRP, params.Burst)
	fmt.Printf("  mapping / page mode    %v / %v\n", cfg.Mem.Scheme, cfg.Mem.PageMode)
	fmt.Printf("  scheduling policy      %v\n", cfg.Mem.Policy)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtdram:", err)
		os.Exit(1)
	}
}
