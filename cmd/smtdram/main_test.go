package main_test

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles cmd/smtdram for the exit-code tests.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "smtdram")
	out, err := exec.Command("go", "build", "-o", bin, "smtdram/cmd/smtdram").CombinedOutput()
	if err != nil {
		t.Fatalf("building smtdram: %v\n%s", err, out)
	}
	return bin
}

// TestBadFaultSpecExitsTwo pins the flag-validation contract: a malformed
// -faults spec is a usage error (exit 2, message on stderr), distinct from
// simulation failures (exit 1). Scripts rely on the split to tell "fix the
// command line" from "the run broke".
func TestBadFaultSpecExitsTwo(t *testing.T) {
	bin := buildCLI(t)
	for _, spec := range []string{
		"frobnicate:rate=1",          // unknown clause
		"bitflip:rate=abc",           // malformed number
		"bitflip:rate=1e-6,rate=0.5", // duplicate key
		"channel-fail:ch=0",          // missing at=
	} {
		out, err := exec.Command(bin, "-faults", spec, "-target", "1000").CombinedOutput()
		var xe *exec.ExitError
		if !errors.As(err, &xe) {
			t.Errorf("-faults %q: err = %v, want exit error (output: %s)", spec, err, out)
			continue
		}
		if code := xe.ExitCode(); code != 2 {
			t.Errorf("-faults %q exited %d, want 2 (output: %s)", spec, code, out)
		}
		if !strings.Contains(string(out), "faults:") {
			t.Errorf("-faults %q: stderr %q does not name the faults spec", spec, out)
		}
	}

	// An out-of-range channel is caught by Validate behind the same exit-2
	// path: the spec parses, but cannot run on the machine the flags shape.
	out, err := exec.Command(bin, "-faults", "channel-fail:ch=9,at=100", "-channels", "4", "-target", "1000").CombinedOutput()
	var xe *exec.ExitError
	if !errors.As(err, &xe) || xe.ExitCode() != 2 {
		t.Errorf("out-of-range channel: err = %v, want exit 2 (output: %s)", err, out)
	}
}
