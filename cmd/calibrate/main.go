// Command calibrate characterizes every synthetic SPEC CPU2000 application
// model on the paper's reference machine: CPI, DRAM reads per 100
// instructions, cache miss rates, and row-buffer behaviour, sorted by memory
// intensity. This is the table the workload models in internal/workload were
// tuned against (see DESIGN.md §2); rerun it after any model change.
//
// Usage:
//
//	calibrate                 # all 26 applications
//	calibrate mcf swim gzip   # a subset
//	calibrate -format csv     # machine-readable
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"smtdram/internal/core"
	"smtdram/internal/report"
	"smtdram/internal/workload"
)

func main() {
	var (
		format = flag.String("format", "text", "output format: text, csv, md")
		warmup = flag.Uint64("warmup", 100_000, "per-thread warmup instructions")
		target = flag.Uint64("target", 150_000, "per-thread measured instructions")
		seed   = flag.Int64("seed", 42, "workload seed")
	)
	flag.Parse()

	f, err := report.ParseFormat(*format)
	if err != nil {
		fatal(err)
	}
	apps := flag.Args()
	if len(apps) == 0 {
		apps = workload.Names()
	}

	type row struct {
		name    string
		class   string
		cpi     float64
		mem     float64
		rowMiss float64
		l1d     float64
		l2      float64
		ipc     float64
	}
	var rows []row
	for _, name := range apps {
		app, err := workload.ByName(name)
		if err != nil {
			fatal(err)
		}
		cfg := core.DefaultConfig(name)
		cfg.WarmupInstr, cfg.TargetInstr, cfg.Seed = *warmup, *target, *seed
		res, err := core.Run(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		rows = append(rows, row{
			name:    name,
			class:   app.Class.String(),
			cpi:     1 / res.IPC[0],
			ipc:     res.IPC[0],
			mem:     res.MemReadsPer100Inst,
			rowMiss: res.RowBufferMissRate,
			l1d:     res.Caches[1].MissRate,
			l2:      res.Caches[2].MissRate,
		})
		fmt.Fprintf(os.Stderr, "  %s done\n", name)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mem < rows[j].mem })

	t := report.New("Application characterization (reference machine, sorted by DRAM intensity)",
		"app", "class", "IPC", "CPI", "memReads/100", "rowMiss", "L1D miss", "L2 miss")
	for _, r := range rows {
		t.AddRow(r.name, r.class, r.ipc, r.cpi, r.mem, r.rowMiss, r.l1d, r.l2)
	}
	if err := t.Render(os.Stdout, f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "calibrate:", err)
	os.Exit(1)
}
