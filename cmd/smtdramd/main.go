// Command smtdramd serves the simulator over HTTP: submissions land on a
// bounded job queue, run on a worker pool, and are answered from a
// fingerprint-keyed result cache when the configuration was seen before. The
// results it serves are byte-identical to `smtdram -json` with the same
// knobs.
//
// Examples:
//
//	smtdramd                                  # serve on 127.0.0.1:8321
//	smtdramd -addr :9000 -queue 128 -workers 8
//	smtdramd -data-dir /var/lib/smtdram       # durable: results + job journal survive kill -9
//	smtdramd -data-dir d -fsync always        # also survive OS crash / power loss
//	smtdramd -loadgen -loadgen-requests 200   # benchmark an in-process daemon
//	smtdramd -loadgen -loadgen-url http://127.0.0.1:8321
//
// On SIGTERM or SIGINT the daemon stops admitting work (new submissions get
// 503), waits up to -drain-timeout for in-flight jobs, and exits cleanly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"smtdram/internal/server"
	"smtdram/internal/server/client"
	"smtdram/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8321", "listen address")
		queue    = flag.Int("queue", 64, "admission queue depth (queued + running jobs); beyond it submissions get 429")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
		cacheN   = flag.Int("cache", 256, "result cache entries (negative disables caching)")
		progress = flag.Uint64("progress-interval", 10_000, "simulated cycles between streamed progress samples")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown before cancelling them")
		quiet    = flag.Bool("quiet", false, "suppress per-job log lines (warnings and errors still print)")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

		dataDir  = flag.String("data-dir", "", "directory for the content-addressed result store and write-ahead job journal (empty: memory-only)")
		fsyncStr = flag.String("fsync", "off", `journal/store fsync policy: "off" (survives kill -9) or "always" (also survives OS crash)`)
		memOnly  = flag.Bool("mem-only", false, "ignore -data-dir and serve memory-only (results and jobs die with the process)")
		ckptDir  = flag.String("checkpoint-dir", "", "persist warmup checkpoints under this directory so figure sweeps fork warm re-runs across restarts (empty: in-memory memoization only)")

		loadgen   = flag.Bool("loadgen", false, "run as a load generator instead of serving, then print a throughput/latency report")
		lgURL     = flag.String("loadgen-url", "", "daemon base URL for -loadgen (empty: benchmark an in-process daemon)")
		lgReqs    = flag.Int("loadgen-requests", 100, "total submissions for -loadgen")
		lgClients = flag.Int("loadgen-clients", 8, "concurrent submitters for -loadgen")
		lgOut     = flag.String("loadgen-out", "", "write the -loadgen report JSON to this file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "smtdramd: unexpected argument %q (all options are flags)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	fsync, err := store.ParseFsyncPolicy(*fsyncStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtdramd:", err)
		flag.Usage()
		os.Exit(2)
	}
	if *memOnly {
		*dataDir = ""
		*ckptDir = ""
	}

	// Structured logging: every lifecycle line carries job/flight correlation
	// keys, so `grep job=j-17` (or a jq filter with -log-json) reconstructs
	// one job's life from the interleaved stream.
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	} else {
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	cfg := server.Config{
		QueueDepth:       *queue,
		Workers:          *workers,
		CacheEntries:     *cacheN,
		ProgressInterval: *progress,
		Logger:           logger,
		DataDir:          *dataDir,
		Fsync:            fsync,
		CheckpointDir:    *ckptDir,
	}

	if *loadgen {
		if err := runLoadGen(cfg, *lgURL, *lgReqs, *lgClients, *lgOut); err != nil {
			fmt.Fprintln(os.Stderr, "smtdramd:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(cfg, *addr, *drainT); err != nil {
		fmt.Fprintln(os.Stderr, "smtdramd:", err)
		os.Exit(1)
	}
}

// serve runs the daemon until SIGTERM/SIGINT, then drains and shuts down.
func serve(cfg server.Config, addr string, drainTimeout time.Duration) error {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	slog.Info("listening", "addr", "http://"+ln.Addr().String(), "queue", cfg.QueueDepth, "workers", workersOf(cfg))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		srv.Close()
		return err
	case got := <-sig:
		slog.Info("draining", "signal", got.String(), "timeout", drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		slog.Warn("drain timed out; in-flight jobs were cancelled", "err", err)
	} else {
		slog.Info("drained cleanly")
	}
	if err := hs.Shutdown(ctx); err != nil {
		_ = hs.Close()
	}
	slog.Info("shutdown complete")
	return nil
}

func workersOf(cfg server.Config) int {
	if cfg.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return cfg.Workers
}

// runLoadGen benchmarks a daemon — a remote one at baseURL, or an in-process
// one when baseURL is empty — and writes the report JSON.
func runLoadGen(cfg server.Config, baseURL string, requests, clients int, outPath string) error {
	if baseURL == "" {
		srv := server.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			_ = hs.Close()
			srv.Close()
		}()
		baseURL = "http://" + ln.Addr().String()
		slog.Info("load-generating against in-process daemon", "url", baseURL)
	}

	c := client.New(baseURL)
	start := time.Now()
	rep, err := c.LoadGen(context.Background(), client.LoadGenConfig{
		Requests: requests,
		Clients:  clients,
	})
	if err != nil {
		return err
	}
	slog.Info("loadgen complete",
		"requests", rep.Requests,
		"elapsed", time.Since(start).Truncate(10*time.Millisecond),
		"req_per_sec", fmt.Sprintf("%.1f", rep.RequestsPerSec),
		"p50_ms", fmt.Sprintf("%.1f", rep.P50Ms),
		"p99_ms", fmt.Sprintf("%.1f", rep.P99Ms),
		"cache_hit_pct", fmt.Sprintf("%.0f", 100*rep.CacheHitRatio),
		"rejections", rep.Rejections,
		"sims_run", rep.SimsRun)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	slog.Info("report written", "path", outPath)
	return nil
}
