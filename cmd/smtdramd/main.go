// Command smtdramd serves the simulator over HTTP: submissions land on a
// bounded job queue, run on a worker pool, and are answered from a
// fingerprint-keyed result cache when the configuration was seen before. The
// results it serves are byte-identical to `smtdram -json` with the same
// knobs.
//
// Examples:
//
//	smtdramd                                  # serve on 127.0.0.1:8321
//	smtdramd -addr :9000 -queue 128 -workers 8
//	smtdramd -data-dir /var/lib/smtdram       # durable: results + job journal survive kill -9
//	smtdramd -data-dir d -fsync always        # also survive OS crash / power loss
//	smtdramd -loadgen -loadgen-requests 200   # benchmark an in-process daemon
//	smtdramd -loadgen -loadgen-url http://127.0.0.1:8321
//
// Fleet mode (DESIGN §16) shards the API across worker daemons by
// configuration fingerprint over a consistent-hash ring:
//
//	smtdramd -node-id w1 -data-dir d1 -peers w2=http://127.0.0.1:8322   # worker
//	smtdramd -coordinator -workers http://127.0.0.1:8321,http://127.0.0.1:8322
//	smtdramd -fleet -fleet-out BENCH_fleet.json                          # fleet benchmark
//
// On SIGTERM or SIGINT the daemon stops admitting work (new submissions get
// 503), waits up to -drain-timeout for in-flight jobs, and exits cleanly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smtdram/internal/fleet"
	"smtdram/internal/server"
	"smtdram/internal/server/client"
	"smtdram/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8321", "listen address")
		queue    = flag.Int("queue", 64, "admission queue depth (queued + running jobs); beyond it submissions get 429")
		workers  = flag.String("workers", "", "concurrent simulations (integer; default GOMAXPROCS) — or, with -coordinator, the comma-separated worker base URLs")
		cacheN   = flag.Int("cache", 256, "result cache entries (negative disables caching)")
		progress = flag.Uint64("progress-interval", 10_000, "simulated cycles between streamed progress samples")
		drainT   = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown before cancelling them")
		quiet    = flag.Bool("quiet", false, "suppress per-job log lines (warnings and errors still print)")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON instead of text")

		dataDir  = flag.String("data-dir", "", "directory for the content-addressed result store and write-ahead job journal (empty: memory-only)")
		fsyncStr = flag.String("fsync", "off", `journal/store fsync policy: "off" (survives kill -9) or "always" (also survives OS crash)`)
		memOnly  = flag.Bool("mem-only", false, "ignore -data-dir and serve memory-only (results and jobs die with the process)")
		ckptDir  = flag.String("checkpoint-dir", "", "persist warmup checkpoints under this directory so figure sweeps fork warm re-runs across restarts (empty: in-memory memoization only)")

		nodeID      = flag.String("node-id", "", "this daemon's fleet node id (no '-'; job ids become j-<node>-<n> and metrics gain node_id/role labels)")
		peersStr    = flag.String("peers", "", "comma-separated fleet peers as name=url for cache peering (requires -node-id)")
		peerTimeout = flag.Duration("peer-timeout", 2*time.Second, "per-fetch timeout when consulting fleet peers for a cached entry")
		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant admission tokens per second (0 disables tenant quotas)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant bucket capacity (default 2×rate, min 1)")
		prioSlots   = flag.Int("priority-slots", 0, "concurrently admitted computed jobs across all tenants (0 disables the priority gate)")
		prioReserve = flag.Int("priority-reserve", 0, "slots held back for X-Smtdram-Priority: high submissions")

		coordinator = flag.Bool("coordinator", false, "serve as a fleet coordinator: shard /v1/sim and /v1/figures across -workers by fingerprint")
		probeIntv   = flag.Duration("probe-interval", 500*time.Millisecond, "coordinator health-probe period")
		failAfter   = flag.Int("fail-after", 3, "consecutive failed probes before a worker is ejected from the ring")

		fleetBench = flag.Bool("fleet", false, "run the fleet benchmark (1/2/3-worker scaling + warm-restart peering) and write a report")
		fleetOut   = flag.String("fleet-out", "", "write the -fleet report JSON to this file (default stdout)")

		loadgen   = flag.Bool("loadgen", false, "run as a load generator instead of serving, then print a throughput/latency report")
		lgURL     = flag.String("loadgen-url", "", "daemon base URL for -loadgen (empty: benchmark an in-process daemon)")
		lgReqs    = flag.Int("loadgen-requests", 100, "total submissions for -loadgen")
		lgClients = flag.Int("loadgen-clients", 8, "concurrent submitters for -loadgen")
		lgOut     = flag.String("loadgen-out", "", "write the -loadgen report JSON to this file (default stdout)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "smtdramd: unexpected argument %q (all options are flags)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	fsync, err := store.ParseFsyncPolicy(*fsyncStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtdramd:", err)
		flag.Usage()
		os.Exit(2)
	}

	// -workers is the sim concurrency (integer) for a daemon, or the worker
	// URL list for -coordinator.
	simWorkers := runtime.GOMAXPROCS(0)
	var workerURLs []string
	if *coordinator {
		workerURLs = splitNonEmpty(*workers)
		if len(workerURLs) == 0 {
			fmt.Fprintln(os.Stderr, "smtdramd: -coordinator needs -workers url1,url2,...")
			os.Exit(2)
		}
	} else if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "smtdramd: -workers %q: want a positive integer (or a URL list with -coordinator)\n", *workers)
			os.Exit(2)
		}
		simWorkers = n
	}
	if strings.Contains(*nodeID, "-") {
		fmt.Fprintf(os.Stderr, "smtdramd: -node-id %q must not contain '-' (it delimits job ids)\n", *nodeID)
		os.Exit(2)
	}
	peers, err := parsePeers(*peersStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smtdramd:", err)
		os.Exit(2)
	}
	if len(peers) > 0 && *nodeID == "" {
		fmt.Fprintln(os.Stderr, "smtdramd: -peers requires -node-id")
		os.Exit(2)
	}
	if *memOnly {
		*dataDir = ""
		*ckptDir = ""
	}

	// Structured logging: every lifecycle line carries job/flight correlation
	// keys, so `grep job=j-17` (or a jq filter with -log-json) reconstructs
	// one job's life from the interleaved stream.
	level := slog.LevelInfo
	if *quiet {
		level = slog.LevelWarn
	}
	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	} else {
		handler = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})
	}
	logger := slog.New(handler)
	slog.SetDefault(logger)

	cfg := server.Config{
		QueueDepth:       *queue,
		Workers:          simWorkers,
		CacheEntries:     *cacheN,
		ProgressInterval: *progress,
		Logger:           logger,
		DataDir:          *dataDir,
		Fsync:            fsync,
		CheckpointDir:    *ckptDir,
		NodeID:           *nodeID,
		PeerTimeout:      *peerTimeout,
	}
	if len(peers) > 0 {
		cfg.PeerFetch = fleet.NewPeerClient(*nodeID, peers, fleet.DefaultVNodes, *peerTimeout, logger)
	}
	var quota *fleet.Quota
	if *tenantRate > 0 || *prioSlots > 0 {
		quota = fleet.NewQuota(fleet.QuotaConfig{
			RatePerSec:  *tenantRate,
			Burst:       *tenantBurst,
			Slots:       *prioSlots,
			HighReserve: *prioReserve,
		})
	}

	if *fleetBench {
		if err := runFleetBench(*fleetOut); err != nil {
			fmt.Fprintln(os.Stderr, "smtdramd:", err)
			os.Exit(1)
		}
		return
	}
	if *coordinator {
		if err := serveCoordinator(fleet.CoordinatorConfig{
			Workers:       workerURLs,
			ProbeInterval: *probeIntv,
			FailAfter:     *failAfter,
			Quota:         quota,
			Logger:        logger,
		}, *addr); err != nil {
			fmt.Fprintln(os.Stderr, "smtdramd:", err)
			os.Exit(1)
		}
		return
	}
	if quota != nil {
		cfg.Admission = quota
	}

	if *loadgen {
		if err := runLoadGen(cfg, *lgURL, *lgReqs, *lgClients, *lgOut); err != nil {
			fmt.Fprintln(os.Stderr, "smtdramd:", err)
			os.Exit(1)
		}
		return
	}
	if err := serve(cfg, *addr, *drainT); err != nil {
		fmt.Fprintln(os.Stderr, "smtdramd:", err)
		os.Exit(1)
	}
}

// serve runs the daemon until SIGTERM/SIGINT, then drains and shuts down.
func serve(cfg server.Config, addr string, drainTimeout time.Duration) error {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	slog.Info("listening", "addr", "http://"+ln.Addr().String(), "queue", cfg.QueueDepth, "workers", workersOf(cfg))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		srv.Close()
		return err
	case got := <-sig:
		slog.Info("draining", "signal", got.String(), "timeout", drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		slog.Warn("drain timed out; in-flight jobs were cancelled", "err", err)
	} else {
		slog.Info("drained cleanly")
	}
	if err := hs.Shutdown(ctx); err != nil {
		_ = hs.Close()
	}
	slog.Info("shutdown complete")
	return nil
}

func workersOf(cfg server.Config) int {
	if cfg.Workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return cfg.Workers
}

// runLoadGen benchmarks a daemon — a remote one at baseURL, or an in-process
// one when baseURL is empty — and writes the report JSON.
func runLoadGen(cfg server.Config, baseURL string, requests, clients int, outPath string) error {
	if baseURL == "" {
		srv := server.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			_ = hs.Close()
			srv.Close()
		}()
		baseURL = "http://" + ln.Addr().String()
		slog.Info("load-generating against in-process daemon", "url", baseURL)
	}

	c := client.New(baseURL)
	start := time.Now()
	rep, err := c.LoadGen(context.Background(), client.LoadGenConfig{
		Requests: requests,
		Clients:  clients,
	})
	if err != nil {
		return err
	}
	slog.Info("loadgen complete",
		"requests", rep.Requests,
		"elapsed", time.Since(start).Truncate(10*time.Millisecond),
		"req_per_sec", fmt.Sprintf("%.1f", rep.RequestsPerSec),
		"p50_ms", fmt.Sprintf("%.1f", rep.P50Ms),
		"p99_ms", fmt.Sprintf("%.1f", rep.P99Ms),
		"cache_hit_pct", fmt.Sprintf("%.0f", 100*rep.CacheHitRatio),
		"rejections", rep.Rejections,
		"sims_run", rep.SimsRun)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	slog.Info("report written", "path", outPath)
	return nil
}

// splitNonEmpty splits a comma-separated list, dropping empty elements.
func splitNonEmpty(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parsePeers parses -peers ("w2=http://host:port,w3=...") into id→URL.
func parsePeers(s string) (map[string]string, error) {
	peers := map[string]string{}
	for _, p := range splitNonEmpty(s) {
		id, u, ok := strings.Cut(p, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("bad -peers element %q (want name=url)", p)
		}
		if strings.Contains(id, "-") {
			return nil, fmt.Errorf("peer id %q must not contain '-'", id)
		}
		peers[id] = u
	}
	return peers, nil
}

// serveCoordinator runs the fleet coordinator until SIGTERM/SIGINT.
func serveCoordinator(cfg fleet.CoordinatorConfig, addr string) error {
	coord := fleet.NewCoordinator(cfg)
	defer coord.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			errCh <- err
		}
	}()
	slog.Info("coordinating", "addr", "http://"+ln.Addr().String(),
		"workers", len(cfg.Workers), "ready", coord.ReadyWorkers())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		slog.Info("shutting down coordinator", "signal", got.String())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		_ = hs.Close()
	}
	return nil
}

// runFleetBench runs the fleet benchmark and writes BENCH_fleet-style JSON.
func runFleetBench(outPath string) error {
	rep, err := fleet.RunBench(context.Background(), fleet.BenchConfig{Logger: slog.Default()})
	if err != nil {
		return err
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(outPath, b, 0o644); err != nil {
		return err
	}
	slog.Info("fleet report written", "path", outPath)
	return nil
}
