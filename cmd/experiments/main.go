// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig all                 # everything, one worker per core
//	experiments -fig 10                  # one figure
//	experiments -fig 2 -target 200000    # longer measurement window
//	experiments -fig all -jobs 1         # sequential (same output, slower)
//
// Valid -fig values: table2, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smtdram/internal/checkpoint"
	"smtdram/internal/core"
	"smtdram/internal/faults"
	"smtdram/internal/figures"
	"smtdram/internal/obs"
	"smtdram/internal/report"
	"smtdram/internal/store"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate (table2, 1..10, all)")
		format  = flag.String("format", "text", "output format: text, csv, md")
		warmup  = flag.Uint64("warmup", 100_000, "per-thread warmup instructions")
		target  = flag.Uint64("target", 100_000, "per-thread measured instructions")
		seed    = flag.Int64("seed", 42, "workload seed")
		jobs    = flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = sequential; output is identical for any value)")
		verbose = flag.Bool("v", false, "print per-run progress")

		faultSpec = flag.String("faults", "", "inject faults into every simulation (same spec as smtdram -faults); figure output then reflects the degraded machine")

		checkpointDir = flag.String("checkpoint-dir", "", "persist warmup checkpoints under this directory and fork warm re-runs from them (figure output stays byte-identical)")

		traceDir   = flag.String("trace", "", "write one Chrome trace_event JSON per simulation run into this directory")
		metricsOut = flag.String("metrics", "", "append every run's metrics to this file (JSON lines, runs separated by meta records)")
		metricsInt = flag.Uint64("metrics-interval", 1000, "metrics sampling period in cycles")

		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile covering all runs to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: unexpected argument %q (all options are flags)\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *metricsOut != "" && *metricsInt == 0 {
		fmt.Fprintln(os.Stderr, "experiments: -metrics-interval must be at least 1 cycle")
		flag.Usage()
		os.Exit(2)
	}
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "experiments: -jobs must be at least 1")
		flag.Usage()
		os.Exit(2)
	}
	if *target == 0 {
		fmt.Fprintln(os.Stderr, "experiments: -target must be at least 1 instruction")
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err == nil {
			err = pprof.StartCPUProfile(f)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err == nil {
			runtime.GC()
			err = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
		}
	}()

	f, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	figures.Render = f

	opts := figures.Options{Warmup: *warmup, Target: *target, Seed: *seed,
		Jobs: *jobs, Baselines: map[string]float64{}}
	if *verbose {
		opts.Out = os.Stderr
	}

	// One checkpoint cache spans every figure of this invocation, so a warmup
	// prefix shared between figures (the reference machine appears in most of
	// them) simulates once. -checkpoint-dir extends the reuse across
	// invocations; stdout is byte-identical either way, and the summary goes
	// to stderr so warm and cold runs still diff clean.
	opts.Checkpoints = checkpoint.New()
	if *checkpointDir != "" {
		c, err := checkpoint.Open(*checkpointDir, store.FsyncOff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		opts.Checkpoints = c
	}
	defer func() {
		s := opts.Checkpoints.Snapshot()
		fmt.Fprintf(os.Stderr, "checkpoints: hits=%d misses=%d forks=%d bypassed=%d evictions=%d entries=%d\n",
			s.Hits, s.Misses, s.Forks, s.Bypassed, s.Evictions, s.Entries)
	}()
	plan, err := faults.Parse(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	observe := observeConfigurer(*traceDir, *metricsOut, *metricsInt)
	if plan != nil || observe != nil {
		opts.Configure = func(cfg *core.Config) {
			cfg.Faults = plan
			if observe != nil {
				observe(cfg)
			}
		}
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*fig, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	run := func(name string, f func() error) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		// Wall-clock timing is diagnostic and varies with -jobs; keep it on
		// stderr so stdout stays byte-identical at any job count.
		fmt.Fprintf(os.Stderr, "  [%s in %s]\n\n", name, time.Since(start).Truncate(time.Millisecond))
	}

	run("table2", func() error { figures.PrintTable2(os.Stdout); return nil })
	run("1", func() error {
		rows, err := figures.Fig1(opts)
		if err != nil {
			return err
		}
		figures.PrintFig1(os.Stdout, rows)
		return nil
	})
	run("2", func() error {
		cells, err := figures.Fig2(opts)
		if err != nil {
			return err
		}
		figures.PrintFig2(os.Stdout, cells)
		return nil
	})
	run("3", func() error {
		rows, err := figures.Fig3(opts)
		if err != nil {
			return err
		}
		figures.PrintFig3(os.Stdout, rows)
		return nil
	})
	var conc []figures.ConcurrencyRow
	run("4", func() error {
		var err error
		conc, err = figures.Fig4and5(opts)
		if err != nil {
			return err
		}
		figures.PrintFig4(os.Stdout, conc)
		return nil
	})
	run("5", func() error {
		if conc == nil {
			var err error
			conc, err = figures.Fig4and5(opts)
			if err != nil {
				return err
			}
		}
		figures.PrintFig5(os.Stdout, conc)
		return nil
	})
	run("6", func() error {
		rows, err := figures.Fig6(opts)
		if err != nil {
			return err
		}
		figures.PrintFig6(os.Stdout, rows)
		return nil
	})
	run("7", func() error {
		rows, err := figures.Fig7(opts)
		if err != nil {
			return err
		}
		figures.PrintFig7(os.Stdout, rows)
		return nil
	})
	run("8", func() error {
		rows, err := figures.Fig8(opts)
		if err != nil {
			return err
		}
		figures.PrintMapping(os.Stdout, "Figure 8: row-buffer miss rates, 2-channel DDR", rows)
		return nil
	})
	run("9", func() error {
		rows, err := figures.Fig9(opts)
		if err != nil {
			return err
		}
		figures.PrintMapping(os.Stdout, "Figure 9: row-buffer miss rates, 2-channel Direct Rambus", rows)
		return nil
	})
	run("10", func() error {
		cells, err := figures.Fig10(opts)
		if err != nil {
			return err
		}
		figures.PrintFig10(os.Stdout, cells)
		return nil
	})
}

// observeConfigurer builds the Options.Configure hook that attaches a fresh
// observer to every simulation a figure runs, flushing per-run output as each
// run finishes: one Chrome trace file per run under traceDir, and all runs'
// metrics appended to metricsPath (each run introduced by its meta record).
// Returns nil when neither output is requested.
//
// With -jobs > 1 the Observe/OnFinish hooks fire on worker goroutines, so the
// run counter is atomic and the shared metrics file is written under a mutex
// (each run's records stay contiguous; run numbering follows start order,
// which is only deterministic at -jobs 1).
func observeConfigurer(traceDir, metricsPath string, interval uint64) func(*core.Config) {
	if traceDir == "" && metricsPath == "" {
		return nil
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	var metricsMu sync.Mutex
	var metricsFile *os.File
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		metricsFile = f
	}
	var runN atomic.Int64
	return func(cfg *core.Config) {
		apps := strings.Join(cfg.Apps, "+")
		cfg.Observe = func() *obs.Observer {
			label := fmt.Sprintf("run%04d-%s", runN.Add(1), apps)
			ob := obs.New(obs.Options{
				Metrics:         metricsFile != nil,
				MetricsInterval: interval,
				Trace:           traceDir != "",
				Label:           label,
			})
			if ob == nil {
				return nil
			}
			ob.OnFinish = func(ob *obs.Observer) {
				if ob.Trace != nil {
					path := traceDir + string(os.PathSeparator) + label + ".json"
					f, err := os.Create(path)
					if err == nil {
						err = ob.Trace.WriteChrome(f)
						if cerr := f.Close(); err == nil {
							err = cerr
						}
					}
					if err != nil {
						fmt.Fprintln(os.Stderr, "experiments: trace:", err)
					}
				}
				if ob.Reg != nil && metricsFile != nil {
					metricsMu.Lock()
					err := ob.Reg.WriteJSONL(metricsFile, ob.Label, ob.FinalCycle)
					metricsMu.Unlock()
					if err != nil {
						fmt.Fprintln(os.Stderr, "experiments: metrics:", err)
					}
				}
			}
			return ob
		}
	}
}
