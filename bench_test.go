package smtdram

// The benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation, plus ablation benches for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its figure at a reduced per-thread instruction
// budget (the -short sizes) and reports the headline number as a custom
// metric, so regressions in the reproduced *shape* show up as metric drift.
// cmd/experiments prints the full tables at publication sizes.

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"smtdram/internal/checkpoint"
	"smtdram/internal/core"
	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/figures"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
)

// benchOpts is the reduced experiment size used by the benchmarks.
func benchOpts() figures.Options {
	return figures.Options{
		Warmup:    60_000,
		Target:    40_000,
		Seed:      42,
		Baselines: map[string]float64{},
	}
}

// benchCfg is a reduced single-run config.
func benchCfg(apps ...string) core.Config {
	cfg := core.DefaultConfig(apps...)
	cfg.WarmupInstr = 60_000
	cfg.TargetInstr = 40_000
	return cfg
}

// BenchmarkTable2Machine measures the simulator itself: cycles/sec simulating
// the Table 1 machine on the 2-MEM mix (Table 2's smallest MEM workload).
func BenchmarkTable2Machine(b *testing.B) {
	b.ReportAllocs()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(benchCfg("mcf", "ammp"))
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/run")
}

// benchMEMMix runs the two-speed clock's best case: a 4-thread all-MEM mix
// (four copies of mcf, the most memory-bound app) on the paper's most
// conservative memory system — all four channels ganged into one logical
// channel, close-page, FCFS, a shallow queue, and a serialized in-flight
// window — under the fetch-stall frontend policy. Every thread stalls on the
// single serialized DRAM pipe together, so almost every cycle falls inside a
// quiescent window. The clock skip runs enabled or disabled, reporting the
// skip rate alongside the deterministic cycle count.
func benchMEMMixCfg() core.Config {
	cfg := benchCfg("mcf", "mcf", "mcf", "mcf")
	cfg.Mem.PhysChannels = 4
	cfg.Mem.Gang = 4
	cfg.Mem.PageMode = dram.ClosePage
	cfg.Mem.Policy = memctrl.FCFS
	cfg.Mem.QueueDepth = 8
	cfg.Mem.MaxInFlight = 1
	cfg.CPU.Policy = cpu.FetchStall
	return cfg
}

func benchMEMMix(b *testing.B, disableSkip, observed bool) {
	b.ReportAllocs()
	var cycles, skipped, wall uint64
	for i := 0; i < b.N; i++ {
		cfg := benchMEMMixCfg()
		cfg.DisableClockSkip = disableSkip
		if observed {
			// A daemon-style progress observer: the cheapest real observer the
			// serving path attaches to every job. It must not constrain the
			// two-speed clock (no registry, so no sample boundaries).
			ob := &obs.Observer{Progress: func(uint64) {}, ProgressInterval: 10_000}
			cfg.Observe = func() *obs.Observer { return ob }
		}
		s, err := core.NewSimulator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
		skipped += s.SkipStats().Skipped
		wall += s.SkipStats().Wall
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "simcycles/run")
	b.ReportMetric(float64(skipped)/float64(wall), "skiprate")
}

// BenchmarkRunMEMMix measures the two-speed clock on its target workload; the
// NoSkip variant is the every-cycle baseline and the Observed variant attaches
// the serving daemon's progress observer. simcycles/run must be identical
// across all three (the skip is byte-equivalent by construction), the
// Observed skiprate must match the bare one (observers ride the deep path,
// they don't disable it), and ns/op is ~3x apart between skip and NoSkip on
// this mix (BENCH_memskip.json records the measured numbers).
func BenchmarkRunMEMMix(b *testing.B)         { benchMEMMix(b, false, false) }
func BenchmarkRunMEMMixNoSkip(b *testing.B)   { benchMEMMix(b, true, false) }
func BenchmarkRunMEMMixObserved(b *testing.B) { benchMEMMix(b, false, true) }

// BenchmarkParallelFigures measures the parallel experiment scheduler on a
// figure-sized sweep (Figure 6: 9 mixes × 3 channel counts plus the shared
// alone-IPC baselines). The jobs=1 case is the sequential path (the pool runs
// each future lazily inline); jobs=GOMAXPROCS fans the independent runs out
// across workers. Output is byte-identical either way — the speedup is pure
// wall clock, so on a single-core host the two cases coincide.
func BenchmarkParallelFigures(b *testing.B) {
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOpts()
				o.Warmup, o.Target = 10_000, 10_000
				o.Jobs = jobs
				if _, err := figures.Fig6(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchFig6Checkpointed runs the standard Figure 6 sweep (9 mixes × 3 channel
// counts plus the alone-IPC baselines) at the benchmark sizes, optionally
// through a warmup-checkpoint cache. The Baselines map is fresh per call so
// the pair below isolates warmup memoization from baseline-IPC memoization.
func benchFig6Checkpointed(b *testing.B, ckpts *checkpoint.Cache) []figures.Fig6Row {
	b.Helper()
	o := figures.Options{Warmup: 60_000, Target: 40_000, Seed: 42,
		Jobs: runtime.GOMAXPROCS(0), Baselines: map[string]float64{}, Checkpoints: ckpts}
	rows, err := figures.Fig6(o)
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

// BenchmarkParallelFiguresUncheckpointed is the cold baseline for the
// checkpointed variant below: every sweep point simulates its full warmup.
func BenchmarkParallelFiguresUncheckpointed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchFig6Checkpointed(b, nil)
	}
}

// BenchmarkParallelFiguresCheckpointed measures the warmup-memoization layer
// (DESIGN §15) on the same sweep: the cache is prewarmed once outside the
// timer, so every timed iteration forks each sweep point from its cached
// warmup-boundary machine state and simulates only the measurement phase.
// With the benchmark's 60k-warmup/40k-target split, skipping warmup bounds
// the ideal speedup at 2.5x; the CI checkpoint-smoke step gates the measured
// ratio over the uncheckpointed baseline at >= 1.5x (BENCH_sweep.json records
// the numbers). Every iteration's rows are asserted identical to a plainly
// computed golden — the cache may only change wall-clock time — and the
// warm-phase hit ratio is reported as a metric (and gated nonzero in CI).
func BenchmarkParallelFiguresCheckpointed(b *testing.B) {
	golden := benchFig6Checkpointed(b, nil)
	ckpts := checkpoint.New()
	if prewarm := benchFig6Checkpointed(b, ckpts); !reflect.DeepEqual(golden, prewarm) {
		b.Fatalf("checkpointed sweep diverged from the plain sweep\nplain: %+v\nckpt:  %+v", golden, prewarm)
	}
	warmStart := ckpts.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := benchFig6Checkpointed(b, ckpts)
		if !reflect.DeepEqual(golden, rows) {
			b.Fatalf("iteration %d diverged from the plain sweep", i)
		}
	}
	b.StopTimer()
	st := ckpts.Snapshot()
	hits := st.Hits - warmStart.Hits
	misses := st.Misses - warmStart.Misses
	if lookups := hits + misses; lookups > 0 {
		b.ReportMetric(float64(hits)/float64(lookups), "ckpt-hitratio")
	}
}

// BenchmarkObsDisabled is the nil-sink baseline for BenchmarkObsEnabled:
// identical machine and mix, observability left nil. The pair measures the
// one-pointer-check cost of the disabled instrumentation against
// BenchmarkTable2Machine's historical numbers, and the enabled overhead
// against this baseline.
func BenchmarkObsDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(benchCfg("mcf", "ammp")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsEnabled runs the same machine with the full observability stack
// (lifecycle trace, per-1000-cycle metrics sampling, loop profiling) attached.
func BenchmarkObsEnabled(b *testing.B) {
	b.ReportAllocs()
	var events int
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("mcf", "ammp")
		ob := NewObserver(ObsOptions{Trace: true, Metrics: true, Profile: true})
		cfg.Observe = func() *Observer { return ob }
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
		events += ob.Trace.Len()
	}
	b.ReportMetric(float64(events)/float64(b.N), "traceevents/run")
}

// BenchmarkFig1CPIBreakdown regenerates the CPI breakdown for the extremes of
// Figure 1 (the full 26-app sweep lives in cmd/experiments -fig 1).
func BenchmarkFig1CPIBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range []string{"gzip", "mcf"} {
			bd, err := core.CPIBreakdown(benchCfg(app), app)
			if err != nil {
				b.Fatal(err)
			}
			if app == "mcf" {
				b.ReportMetric(bd.Mem, "mcf-CPImem")
			} else {
				b.ReportMetric(bd.Mem, "gzip-CPImem")
			}
		}
	}
}

// BenchmarkFig2FetchPolicies compares ICOUNT and DWarn on 8-MIX — the
// workload where the paper's separation is widest.
func BenchmarkFig2FetchPolicies(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		var ws [2]float64
		for j, pol := range []cpu.FetchPolicy{cpu.ICOUNT, cpu.DWarn} {
			cfg := benchCfg("gzip", "mcf", "bzip2", "ammp", "sixtrack", "swim", "eon", "lucas")
			cfg.CPU.Policy = pol
			v, _, err := optsWS(o, cfg)
			if err != nil {
				b.Fatal(err)
			}
			ws[j] = v
		}
		b.ReportMetric(ws[1]/ws[0], "dwarn/icount-WS")
	}
}

// BenchmarkFig3MemoryLoss measures the 8-MEM performance retained versus an
// infinite L3 under DWarn.
func BenchmarkFig3MemoryLoss(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		real := benchCfg("mcf", "ammp", "swim", "lucas")
		realWS, _, err := optsWS(o, real)
		if err != nil {
			b.Fatal(err)
		}
		ref := benchCfg("mcf", "ammp", "swim", "lucas")
		ref.PerfectL3 = true
		refWS, _, err := optsWS(o, ref)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(realWS/refWS, "retained-vs-infL3")
	}
}

// BenchmarkFig4Concurrency measures the probability of >8 outstanding
// requests on 4-MEM while the DRAM system is busy.
func BenchmarkFig4Concurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Run(benchCfg("mcf", "ammp", "swim", "lucas"))
		if err != nil {
			b.Fatal(err)
		}
		var busy, tail uint64
		for k := 1; k < len(res.OutstandingHist); k++ {
			busy += res.OutstandingHist[k]
			if k > 8 {
				tail += res.OutstandingHist[k]
			}
		}
		b.ReportMetric(float64(tail)/float64(busy), "P(>8|busy)")
	}
}

// BenchmarkFig5ThreadSpread measures how often 4-MEM's concurrent requests
// come from all four threads.
func BenchmarkFig5ThreadSpread(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Run(benchCfg("mcf", "ammp", "swim", "lucas"))
		if err != nil {
			b.Fatal(err)
		}
		var total uint64
		for _, v := range res.ThreadSpreadHist {
			total += v
		}
		b.ReportMetric(float64(res.ThreadSpreadHist[4])/float64(total), "P(all-4-threads)")
	}
}

// BenchmarkFig6Channels measures the 4-MEM speedup from quadrupling channels.
func BenchmarkFig6Channels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r2, err := core.Run(benchCfg("mcf", "ammp", "swim", "lucas"))
		if err != nil {
			b.Fatal(err)
		}
		c8 := benchCfg("mcf", "ammp", "swim", "lucas")
		c8.Mem.PhysChannels = 8
		r8, err := core.Run(c8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r8.TotalIPC()/r2.TotalIPC(), "8ch/2ch-IPC")
	}
}

// BenchmarkFig7Ganging measures 8C-1G over 8C-4G on 4-MEM — the paper's
// headline "independent channels may outperform ganged by up to 90%".
func BenchmarkFig7Ganging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		indep := benchCfg("mcf", "ammp", "swim", "lucas")
		indep.Mem.PhysChannels = 8
		ri, err := core.Run(indep)
		if err != nil {
			b.Fatal(err)
		}
		ganged := benchCfg("mcf", "ammp", "swim", "lucas")
		ganged.Mem.PhysChannels = 8
		ganged.Mem.Gang = 4
		rg, err := core.Run(ganged)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ri.TotalIPC()/rg.TotalIPC(), "8C1G/8C4G-IPC")
	}
}

// BenchmarkFig8MappingDDR measures the page→XOR row-buffer miss reduction on
// the 2-channel DDR system, 4-MEM.
func BenchmarkFig8MappingDDR(b *testing.B) {
	benchMapping(b, core.DDR)
}

// BenchmarkFig9MappingRDRAM measures the same on Direct Rambus, where the
// paper finds the XOR scheme far more effective (many more banks).
func BenchmarkFig9MappingRDRAM(b *testing.B) {
	benchMapping(b, core.RDRAM)
}

func benchMapping(b *testing.B, kind core.DRAMKind) {
	for i := 0; i < b.N; i++ {
		page := benchCfg("mcf", "ammp", "swim", "lucas")
		page.Mem.Kind = kind
		page.Mem.Scheme = PageMapping
		rp, err := core.Run(page)
		if err != nil {
			b.Fatal(err)
		}
		xor := benchCfg("mcf", "ammp", "swim", "lucas")
		xor.Mem.Kind = kind
		xor.Mem.Scheme = XORMapping
		rx, err := core.Run(xor)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rp.RowBufferMissRate, "page-miss")
		b.ReportMetric(rx.RowBufferMissRate, "xor-miss")
	}
}

// BenchmarkFig10Scheduling measures the thread-aware request-based scheme
// against FCFS on 4-MEM.
func BenchmarkFig10Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fc := benchCfg("mcf", "ammp", "swim", "lucas")
		fc.Mem.Policy = memctrl.FCFS
		rf, err := core.Run(fc)
		if err != nil {
			b.Fatal(err)
		}
		rb := benchCfg("mcf", "ammp", "swim", "lucas")
		rb.Mem.Policy = memctrl.RequestBased
		rr, err := core.Run(rb)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rr.TotalIPC()/rf.TotalIPC(), "reqbased/fcfs-IPC")
	}
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationPageMode compares open vs close page on a streaming MEM
// mix (open page should win: the streams hit the row buffers).
func BenchmarkAblationPageMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		open := benchCfg("swim", "lucas")
		open.Mem.PageMode = dram.OpenPage
		ro, err := core.Run(open)
		if err != nil {
			b.Fatal(err)
		}
		closed := benchCfg("swim", "lucas")
		closed.Mem.PageMode = dram.ClosePage
		rc, err := core.Run(closed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ro.TotalIPC()/rc.TotalIPC(), "open/close-IPC")
	}
}

// BenchmarkAblationMSHR throttles memory-level parallelism by shrinking the
// MSHRs from 16 to 4.
func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := benchCfg("mcf", "ammp")
		rf, err := core.Run(full)
		if err != nil {
			b.Fatal(err)
		}
		small := benchCfg("mcf", "ammp")
		for _, c := range []*struct{ MSHRs *int }{
			{&small.L1D.MSHRs}, {&small.L1I.MSHRs}, {&small.L2.MSHRs}, {&small.L3.MSHRs},
		} {
			*c.MSHRs = 4
		}
		rs, err := core.Run(small)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rf.TotalIPC()/rs.TotalIPC(), "mshr16/mshr4-IPC")
	}
}

// BenchmarkAblationQueueDepth shrinks the per-channel controller queue from
// 64 to 8, reducing the scheduler's reordering window.
func BenchmarkAblationQueueDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		deep := benchCfg("mcf", "ammp", "swim", "lucas")
		rd, err := core.Run(deep)
		if err != nil {
			b.Fatal(err)
		}
		shallow := benchCfg("mcf", "ammp", "swim", "lucas")
		shallow.Mem.QueueDepth = 8
		rs, err := core.Run(shallow)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rd.TotalIPC()/rs.TotalIPC(), "deep/shallow-IPC")
	}
}

// BenchmarkAblationPolicyOrder tests the paper's Section 3.2 claim that
// hit-first must rank above the thread-aware criterion.
func BenchmarkAblationPolicyOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		paper := benchCfg("mcf", "ammp", "swim", "lucas")
		paper.Mem.Policy = memctrl.RequestBased
		rp, err := core.Run(paper)
		if err != nil {
			b.Fatal(err)
		}
		inverted := benchCfg("mcf", "ammp", "swim", "lucas")
		inverted.Mem.Policy = memctrl.RequestBased
		inverted.Mem.ThreadAwareFirst = true
		ri, err := core.Run(inverted)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rp.TotalIPC()/ri.TotalIPC(), "hitfirst-above/below-IPC")
	}
}

// optsWS is a small helper around the figures package's baseline cache.
func optsWS(o figures.Options, cfg core.Config) (float64, core.Result, error) {
	return figures.WS(o, cfg)
}

// BenchmarkAblationPrefetch enables Table 1's prefetch MSHRs (next-line
// prefetching at the L2) on a streaming mix.
func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		off := benchCfg("swim", "lucas")
		ro, err := core.Run(off)
		if err != nil {
			b.Fatal(err)
		}
		on := benchCfg("swim", "lucas")
		on.L2.PrefetchNextLine = true
		on.L2.PrefetchMSHRs = 4
		rp, err := core.Run(on)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rp.TotalIPC()/ro.TotalIPC(), "prefetch-on/off-IPC")
	}
}

// BenchmarkAblationRefresh measures the cost of realistic all-bank refresh
// (7.8 µs tREFI / 70 ns tRFC), which the paper's model omits.
func BenchmarkAblationRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ideal := benchCfg("mcf", "ammp")
		ri, err := core.Run(ideal)
		if err != nil {
			b.Fatal(err)
		}
		refreshed := benchCfg("mcf", "ammp")
		refreshed.Mem.Refresh = true
		rr, err := core.Run(refreshed)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ri.TotalIPC()/rr.TotalIPC(), "ideal/refresh-IPC")
	}
}

// BenchmarkAblationTurnaround measures a 5 ns bus direction-switch penalty,
// the overhead write-buffer literature targets.
func BenchmarkAblationTurnaround(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ideal := benchCfg("swim", "lucas")
		ri, err := core.Run(ideal)
		if err != nil {
			b.Fatal(err)
		}
		penalized := benchCfg("swim", "lucas")
		penalized.Mem.TurnaroundNS = 5
		rp, err := core.Run(penalized)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ri.TotalIPC()/rp.TotalIPC(), "ideal/turnaround-IPC")
	}
}

// BenchmarkCriticalityScheduling measures the Section 3.1 criticality-based
// policy (not in Figure 10) against FCFS on a MIX workload, where critical
// demand loads compete with writeback traffic.
func BenchmarkCriticalityScheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fc := benchCfg("gzip", "mcf", "bzip2", "ammp")
		fc.Mem.Policy = memctrl.FCFS
		rf, err := core.Run(fc)
		if err != nil {
			b.Fatal(err)
		}
		cr := benchCfg("gzip", "mcf", "bzip2", "ammp")
		cr.Mem.Policy = memctrl.CriticalityBased
		rc, err := core.Run(cr)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rc.TotalIPC()/rf.TotalIPC(), "critical/fcfs-IPC")
	}
}

// BenchmarkCoopFetchPolicy measures the paper's future-work direction —
// fetch policy / memory scheduler cooperation — against plain DWarn on the
// clog-prone 8-MIX workload.
func BenchmarkCoopFetchPolicy(b *testing.B) {
	o := benchOpts()
	for i := 0; i < b.N; i++ {
		dwarn := benchCfg("gzip", "mcf", "bzip2", "ammp", "sixtrack", "swim", "eon", "lucas")
		dwarn.CPU.Policy = cpu.DWarn
		wd, _, err := optsWS(o, dwarn)
		if err != nil {
			b.Fatal(err)
		}
		coop := benchCfg("gzip", "mcf", "bzip2", "ammp", "sixtrack", "swim", "eon", "lucas")
		coop.CPU.Policy = cpu.Coop
		wc, _, err := optsWS(o, coop)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(wc/wd, "coop/dwarn-WS")
	}
}
