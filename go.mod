module smtdram

go 1.22
